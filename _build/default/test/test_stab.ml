(* Stabilizer tableau tests, validated against the dense reference
   semantics on small Clifford circuits. *)

open Oqec_base
open Oqec_circuit
open Oqec_stab
open Oqec_qcec
open Helpers

let random_clifford seed n len =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 9 with
    | 0 -> c := Circuit.h !c q
    | 1 -> c := Circuit.s !c q
    | 2 -> c := Circuit.gate !c Gate.Sdg q
    | 3 -> c := Circuit.x !c q
    | 4 -> c := Circuit.gate !c Gate.Y q
    | 5 -> c := Circuit.z !c q
    | 6 -> if n > 1 then c := Circuit.cx !c q q2
    | 7 -> if n > 1 then c := Circuit.cz !c q q2
    | _ -> if n > 1 then c := Circuit.swap !c q q2
  done;
  !c

let test_single_gate_rows () =
  (* H maps X->Z and Z->X. *)
  let t = Tableau.of_circuit (Circuit.h (Circuit.create 1) 0) in
  let x_img = Tableau.row_x t 0 and z_img = Tableau.row_z t 0 in
  (match x_img with
  | [| false |], [| true |], false -> ()
  | _ -> Alcotest.fail "H: X should map to Z");
  (match z_img with
  | [| true |], [| false |], false -> ()
  | _ -> Alcotest.fail "H: Z should map to X");
  (* S maps X->Y and Z->Z. *)
  let t = Tableau.of_circuit (Circuit.s (Circuit.create 1) 0) in
  (match Tableau.row_x t 0 with
  | [| true |], [| true |], false -> ()
  | _ -> Alcotest.fail "S: X should map to Y");
  (* X flips the sign of Z. *)
  let t = Tableau.of_circuit (Circuit.x (Circuit.create 1) 0) in
  (match Tableau.row_z t 0 with
  | [| false |], [| true |], true -> ()
  | _ -> Alcotest.fail "X: Z should map to -Z")

let test_cx_rows () =
  (* CX(0,1): X0 -> X0 X1, Z1 -> Z0 Z1, X1 -> X1, Z0 -> Z0. *)
  let t = Tableau.of_circuit (Circuit.cx (Circuit.create 2) 0 1) in
  (match Tableau.row_x t 0 with
  | [| true; true |], [| false; false |], false -> ()
  | _ -> Alcotest.fail "CX: X0 -> X0X1");
  (match Tableau.row_z t 1 with
  | [| false; false |], [| true; true |], false -> ()
  | _ -> Alcotest.fail "CX: Z1 -> Z0Z1");
  match Tableau.row_x t 1 with
  | [| false; true |], [| false; false |], false -> ()
  | _ -> Alcotest.fail "CX: X1 fixed"

let test_not_clifford () =
  (match Tableau.of_circuit (Circuit.t_gate (Circuit.create 1) 0) with
  | exception Tableau.Not_clifford _ -> ()
  | _ -> Alcotest.fail "T accepted");
  match Tableau.of_circuit (Circuit.ccx (Circuit.create 3) 0 1 2) with
  | exception Tableau.Not_clifford _ -> ()
  | _ -> Alcotest.fail "Toffoli accepted"

(* Ground truth: tableau equality iff dense unitaries equal up to phase. *)
let prop_tableau_matches_dense =
  qtest ~count:60 "stab: tableau equality = dense equality up to phase"
    QCheck.(pair (make ~print:string_of_int Gen.int) (make ~print:string_of_int Gen.int))
    (fun (s1, s2) ->
      let n = 2 + (abs s1 mod 3) in
      let c1 = random_clifford s1 n 12 in
      let c2 = random_clifford s2 n 12 in
      let dense_eq =
        Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary c1) (Unitary.unitary c2)
      in
      let tab_eq = Tableau.equal (Tableau.of_circuit c1) (Tableau.of_circuit c2) in
      dense_eq = tab_eq)

let prop_tableau_self =
  qtest ~count:30 "stab: crz(pi), sx and friends conjugate correctly"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let rng = Rng.make ~seed in
      let n = 2 in
      let c = ref (Circuit.create n) in
      for _ = 1 to 8 do
        match Rng.int rng 5 with
        | 0 -> c := Circuit.gate !c Gate.Sx (Rng.int rng n)
        | 1 -> c := Circuit.gate !c Gate.Sxdg (Rng.int rng n)
        | 2 -> c := Circuit.add !c (Circuit.Ctrl ([ 0 ], Gate.Rz Phase.pi, 1))
        | 3 -> c := Circuit.ry !c Phase.half_pi (Rng.int rng n)
        | _ -> c := Circuit.gate !c (Gate.U (Phase.half_pi, Phase.zero, Phase.pi)) (Rng.int rng n)
      done;
      (* Compare against an equivalent-by-construction variant: c itself
         composed with identity-equalling pair. *)
      let c2 = Circuit.h (Circuit.h !c 0) 0 in
      let dense_eq =
        Dmatrix.equal_up_to_phase ~tol:1e-8 (Unitary.unitary !c) (Unitary.unitary c2)
      in
      let tab_eq = Tableau.equal (Tableau.of_circuit !c) (Tableau.of_circuit c2) in
      dense_eq && tab_eq)

let outcome_testable =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Equivalence.outcome_to_string o))
    ( = )

let test_clifford_strategy_wide () =
  (* GHZ-65 compiled onto Manhattan verifies instantly. *)
  let g = Oqec_workloads.Workloads.ghz 65 in
  let g' = Oqec_compile.Compile.run Oqec_compile.Architecture.manhattan g in
  let r = Qcec.check ~strategy:Qcec.Clifford g g' in
  Alcotest.check outcome_testable "equivalent" Equivalence.Equivalent r.Equivalence.outcome;
  Alcotest.(check bool) "fast" true (r.Equivalence.elapsed < 2.0);
  let broken = Oqec_workloads.Workloads.flip_cnot ~seed:3 g' in
  let r2 = Qcec.check ~strategy:Qcec.Clifford g broken in
  Alcotest.check outcome_testable "refuted" Equivalence.Not_equivalent r2.Equivalence.outcome

let test_clifford_strategy_graph_state () =
  let g = Oqec_workloads.Workloads.graph_state ~seed:3 62 in
  let g' = Oqec_compile.Compile.run Oqec_compile.Architecture.manhattan g in
  let r = Qcec.check ~strategy:Qcec.Clifford g g' in
  Alcotest.check outcome_testable "equivalent" Equivalence.Equivalent r.Equivalence.outcome

let test_clifford_strategy_declines () =
  let c = Circuit.t_gate (Circuit.create 1) 0 in
  let r = Qcec.check ~strategy:Qcec.Clifford c c in
  Alcotest.check outcome_testable "no information" Equivalence.No_information
    r.Equivalence.outcome

let suite =
  [
    Alcotest.test_case "single-gate conjugations" `Quick test_single_gate_rows;
    Alcotest.test_case "cx conjugations" `Quick test_cx_rows;
    Alcotest.test_case "non-clifford rejected" `Quick test_not_clifford;
    prop_tableau_matches_dense;
    prop_tableau_self;
    Alcotest.test_case "ghz-65 on manhattan" `Quick test_clifford_strategy_wide;
    Alcotest.test_case "graph-state-62 on manhattan" `Quick test_clifford_strategy_graph_state;
    Alcotest.test_case "declines non-clifford" `Quick test_clifford_strategy_declines;
  ]
