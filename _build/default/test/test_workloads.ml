(* Workload generators validated by their computational behaviour. *)

open Oqec_base
open Oqec_circuit
open Oqec_workloads.Workloads
open Helpers

let amplitude c input output =
  let n = Circuit.num_qubits c in
  let v = Unitary.basis_state n input in
  Unitary.apply_to_vector c v;
  v.(output)

let probability c input output = Cx.mag2 (amplitude c input output)

(* Apply the circuit as a classical reversible function on basis states. *)
let classical_map c input =
  let n = Circuit.num_qubits c in
  let v = Unitary.basis_state n input in
  Unitary.apply_to_vector c v;
  let hits = ref [] in
  Array.iteri (fun i amp -> if Cx.mag2 amp > 0.5 then hits := i :: !hits) v;
  match !hits with [ i ] -> i | _ -> Alcotest.fail "not a classical map"

let test_ghz () =
  let c = ghz 4 in
  Alcotest.(check (float 1e-9)) "|0000>" 0.5 (probability c 0 0);
  Alcotest.(check (float 1e-9)) "|1111>" 0.5 (probability c 0 15);
  Alcotest.(check (float 1e-9)) "|0001>" 0.0 (probability c 0 1)

let test_graph_state () =
  let c = graph_state ~seed:3 8 in
  Alcotest.(check int) "8 qubits" 8 (Circuit.num_qubits c);
  (* Graph states are stabilizer states: every amplitude has magnitude
     1/sqrt(2^8) or the structure is wrong. *)
  let v = Unitary.basis_state 8 0 in
  Unitary.apply_to_vector c v;
  Array.iter
    (fun amp ->
      Alcotest.(check (float 1e-9)) "flat magnitude" (1.0 /. 256.0) (Cx.mag2 amp))
    v

let test_qft_matrix () =
  (* QFT with the swap network maps |j> to sum_k w^(jk) |k> / sqrt N. *)
  let n = 3 in
  let c = qft n in
  let u = Unitary.unitary c in
  let dim = 1 lsl n in
  let w = 2.0 *. Float.pi /. float_of_int dim in
  let expected =
    Dmatrix.make dim dim (fun k j ->
        Cx.scale (1.0 /. sqrt (float_of_int dim)) (Cx.e_i (w *. float_of_int (j * k))))
  in
  check_matrix_up_to_phase "qft = dft" expected u

let test_qft_no_swaps () =
  let c = qft ~with_swaps:false 3 in
  Alcotest.(check int) "gate count" 6 (Circuit.gate_count c)

let test_qpe_exact_deterministic () =
  let n = 4 in
  let c = qpe_exact ~seed:11 n in
  Alcotest.(check int) "n+1 qubits" (n + 1) (Circuit.num_qubits c);
  (* Exactly representable phase: the evaluation register ends in a
     definite basis state. *)
  let v = Unitary.basis_state (n + 1) 0 in
  Unitary.apply_to_vector c v;
  let best = ref 0.0 in
  Array.iter (fun amp -> best := max !best (Cx.mag2 amp)) v;
  Alcotest.(check (float 1e-6)) "deterministic outcome" 1.0 !best

let test_grover_amplifies () =
  let n = 4 in
  let c = grover ~seed:5 n in
  let v = Unitary.basis_state n 0 in
  Unitary.apply_to_vector c v;
  let best_p = ref 0.0 in
  Array.iter (fun amp -> best_p := max !best_p (Cx.mag2 amp)) v;
  (* With the optimal iteration count the marked element dominates. *)
  Alcotest.(check bool) "amplified" true (!best_p > 0.9)

let test_random_walk_shifts () =
  (* One step from |pos=0, coin=0>: H then controlled shift: the walker
     superposes positions +1 and -1 ... in our gate order the coin toggles
     select increment/decrement; check that exactly two basis states carry
     probability 1/2 each. *)
  let n = 4 in
  let c = random_walk ~steps:1 n in
  let v = Unitary.basis_state n 0 in
  Unitary.apply_to_vector c v;
  let nonzero = ref [] in
  Array.iteri (fun i a -> if Cx.mag2 a > 1e-12 then nonzero := i :: !nonzero) v;
  (* From pos=0: the walker moves to pos -1 = 7 with coin 0 and to pos 1
     with coin 1 (positions are wires 0..2, the coin is wire 3). *)
  Alcotest.(check (list int)) "positions +1 and -1" [ 7; 1 + 8 ]
    (List.sort compare !nonzero);
  List.iter
    (fun i -> Alcotest.(check (float 1e-9)) "half probability" 0.5 (Cx.mag2 v.(i)))
    !nonzero

let test_ripple_adder () =
  let n = 3 in
  let c = ripple_adder n in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let input = (a lsl 1) lor (b lsl (1 + n)) in
      let out = classical_map c input in
      let sum = a + b in
      let b_out = (out lsr (1 + n)) land 7 in
      let a_out = (out lsr 1) land 7 in
      let carry = (out lsr ((2 * n) + 1)) land 1 in
      Alcotest.(check int) "b holds a+b" (sum land 7) b_out;
      Alcotest.(check int) "a preserved" a a_out;
      Alcotest.(check int) "carry" (sum lsr n) carry
    done
  done

let test_const_adder_mod () =
  let bits = 4 in
  let constant = 5 in
  let c = const_adder_mod ~bits ~constant in
  for x = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "%d + %d mod 16" x constant)
      ((x + constant) mod 16)
      (classical_map c x)
  done

let test_comparator () =
  let n = 2 in
  let c = comparator n in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let input = (a lsl 1) lor (b lsl (1 + n)) in
      let out = classical_map c input in
      let result = (out lsr ((2 * n) + 1)) land 1 in
      let expected = if a <= b then 1 else 0 in
      Alcotest.(check int) (Printf.sprintf "compare %d %d" a b) expected result;
      (* Inputs are restored. *)
      Alcotest.(check int) "inputs restored" input (out land ((1 lsl ((2 * n) + 1)) - 1))
    done
  done

let test_random_reversible_is_permutation () =
  let c = random_reversible ~seed:9 ~gates:30 4 in
  let u = Unitary.unitary c in
  for j = 0 to 15 do
    let ones = ref 0 in
    for i = 0 to 15 do
      let m = Cx.mag2 (Dmatrix.get u i j) in
      if m > 0.5 then incr ones
      else Alcotest.(check (float 1e-9)) "zero entry" 0.0 m
    done;
    Alcotest.(check int) "permutation column" 1 !ones
  done

let test_remove_gate () =
  let c = ghz 4 in
  let broken = remove_gate ~seed:2 c in
  Alcotest.(check int) "one fewer" (Circuit.gate_count c - 1) (Circuit.gate_count broken);
  Alcotest.(check bool) "not equivalent" false (Unitary.equivalent c broken)

let test_flip_cnot () =
  let c = ghz 4 in
  let broken = flip_cnot ~seed:2 c in
  Alcotest.(check int) "same count" (Circuit.gate_count c) (Circuit.gate_count broken);
  Alcotest.(check bool) "not equivalent" false (Unitary.equivalent c broken)

let test_flip_cnot_no_cnot () =
  let c = Circuit.h (Circuit.create 1) 0 in
  match flip_cnot ~seed:1 c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_bernstein_vazirani () =
  let n = 5 in
  let secret = 0b10110 in
  let c = bernstein_vazirani ~secret n in
  (* The data register ends deterministically in |secret>. *)
  let v = Unitary.basis_state (n + 1) 0 in
  Unitary.apply_to_vector c v;
  let data_prob = ref 0.0 in
  Array.iteri
    (fun i amp -> if i land ((1 lsl n) - 1) = secret then data_prob := !data_prob +. Cx.mag2 amp)
    v;
  Alcotest.(check (float 1e-9)) "secret recovered" 1.0 !data_prob

let test_deutsch_jozsa () =
  let n = 4 in
  let outcome_zero c =
    let v = Unitary.basis_state (n + 1) 0 in
    Unitary.apply_to_vector c v;
    let p = ref 0.0 in
    Array.iteri
      (fun i amp -> if i land ((1 lsl n) - 1) = 0 then p := !p +. Cx.mag2 amp)
      v;
    !p
  in
  Alcotest.(check (float 1e-9)) "constant -> all zeros" 1.0
    (outcome_zero (deutsch_jozsa ~seed:4 ~balanced:false n));
  Alcotest.(check (float 1e-9)) "balanced -> never all zeros" 0.0
    (outcome_zero (deutsch_jozsa ~seed:4 ~balanced:true n))

let test_w_state () =
  let n = 5 in
  let c = w_state n in
  let v = Unitary.basis_state n 0 in
  Unitary.apply_to_vector c v;
  Array.iteri
    (fun i amp ->
      let expected =
        (* one-hot states carry probability 1/n *)
        if i > 0 && i land (i - 1) = 0 then 1.0 /. float_of_int n else 0.0
      in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "amp %d" i) expected (Cx.mag2 amp))
    v

let test_hidden_weighted_bit () =
  let n = 4 in
  let c = hidden_weighted_bit n in
  let data_mask = (1 lsl n) - 1 in
  let rotl x w =
    let w = w mod n in
    ((x lsl w) lor (x lsr (n - w))) land data_mask
  in
  for x = 0 to data_mask do
    let weight =
      let rec count k acc = if k = 0 then acc else count (k lsr 1) (acc + (k land 1)) in
      count x 0
    in
    let out = classical_map c x in
    Alcotest.(check int)
      (Printf.sprintf "hwb(%d)" x)
      (rotl x weight)
      (out land data_mask);
    Alcotest.(check int) "weight register cleared" 0 (out lsr n)
  done

let test_vqe_ansatz () =
  let c = vqe_ansatz ~seed:3 ~layers:2 4 in
  Alcotest.(check bool) "unitary" true (Dmatrix.is_unitary ~tol:1e-8 (Unitary.unitary c));
  (* Angles are genuinely non-dyadic: at least one phase is inexact. *)
  let has_inexact =
    List.exists
      (function
        | Circuit.Gate (Gate.Ry a, _) | Circuit.Gate (Gate.Rz a, _) -> not (Phase.is_exact a)
        | _ -> false)
      (Circuit.ops c)
  in
  Alcotest.(check bool) "non-dyadic angles" true has_inexact

let prop_generators_unitary =
  qtest ~count:15 "workloads: generated circuits are unitary"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let cs =
        [
          ghz 4;
          graph_state ~seed 5;
          qft 4;
          qpe_exact ~seed 3;
          grover ~seed 3;
          random_walk ~steps:2 4;
          random_reversible ~seed ~gates:12 4;
        ]
      in
      List.for_all (fun c -> Dmatrix.is_unitary ~tol:1e-8 (Unitary.unitary c)) cs)

let suite =
  [
    Alcotest.test_case "ghz state" `Quick test_ghz;
    Alcotest.test_case "graph state flatness" `Quick test_graph_state;
    Alcotest.test_case "qft is the dft" `Quick test_qft_matrix;
    Alcotest.test_case "qft without swaps" `Quick test_qft_no_swaps;
    Alcotest.test_case "qpe exact is deterministic" `Quick test_qpe_exact_deterministic;
    Alcotest.test_case "grover amplifies" `Quick test_grover_amplifies;
    Alcotest.test_case "random walk branches" `Quick test_random_walk_shifts;
    Alcotest.test_case "ripple adder adds" `Quick test_ripple_adder;
    Alcotest.test_case "const adder mod" `Quick test_const_adder_mod;
    Alcotest.test_case "comparator" `Quick test_comparator;
    Alcotest.test_case "random reversible is a permutation" `Quick
      test_random_reversible_is_permutation;
    Alcotest.test_case "remove gate breaks equivalence" `Quick test_remove_gate;
    Alcotest.test_case "flip cnot breaks equivalence" `Quick test_flip_cnot;
    Alcotest.test_case "flip cnot without cnots" `Quick test_flip_cnot_no_cnot;
    Alcotest.test_case "bernstein-vazirani" `Quick test_bernstein_vazirani;
    Alcotest.test_case "deutsch-jozsa" `Quick test_deutsch_jozsa;
    Alcotest.test_case "w state" `Quick test_w_state;
    Alcotest.test_case "hidden weighted bit" `Quick test_hidden_weighted_bit;
    Alcotest.test_case "vqe ansatz" `Quick test_vqe_ansatz;
    prop_generators_unitary;
  ]
