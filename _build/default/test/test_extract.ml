(* Circuit extraction from ZX diagrams: round-trip validation. *)

open Oqec_base
open Oqec_circuit
open Oqec_zx
open Helpers

let random_circuit ?(tgates = true) seed n len =
  let rng = Rng.make ~seed in
  let c = ref (Circuit.create n) in
  for _ = 1 to len do
    let q = Rng.int rng n in
    let q2 = (q + 1 + Rng.int rng (max 1 (n - 1))) mod n in
    match Rng.int rng 7 with
    | 0 -> c := Circuit.h !c q
    | 1 -> if tgates then c := Circuit.t_gate !c q else c := Circuit.s !c q
    | 2 -> c := Circuit.s !c q
    | 3 -> if n > 1 then c := Circuit.cx !c q q2
    | 4 -> if n > 1 then c := Circuit.cz !c q q2
    | 5 -> if n > 1 then c := Circuit.swap !c q q2
    | _ -> c := Circuit.x !c q
  done;
  !c

let test_extract_basics () =
  let check name c =
    let out = Zx_extract.resynthesize c in
    Alcotest.(check bool) name true
      (Zx_tensor.proportional (Unitary.unitary c) (Unitary.unitary out))
  in
  check "identity wire" (Circuit.create 2);
  check "single h" (Circuit.h (Circuit.create 1) 0);
  check "t gate" (Circuit.t_gate (Circuit.create 1) 0);
  check "cx" (Circuit.cx (Circuit.create 2) 0 1);
  check "cz" (Circuit.cz (Circuit.create 2) 0 1);
  check "bare swap" (Circuit.swap (Circuit.create 2) 0 1);
  check "three-wire crossing"
    (Circuit.swap (Circuit.swap (Circuit.create 3) 0 1) 1 2);
  check "ghz" (Circuit.cx (Circuit.cx (Circuit.h (Circuit.create 3) 0) 0 1) 0 2)

let prop_extract_roundtrip =
  qtest ~count:50 "extract: resynthesis preserves semantics (dense)"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let n = 1 + (abs seed mod 3) in
      let c = random_circuit seed n 14 in
      let out = Zx_extract.resynthesize c in
      Zx_tensor.proportional (Unitary.unitary c) (Unitary.unitary out))

let prop_extract_roundtrip_wide =
  qtest ~count:15 "extract: resynthesis verified by the DD checker (6 qubits)"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_circuit seed 6 40 in
      let out = Zx_extract.resynthesize c in
      let r = Oqec_qcec.Qcec.check ~strategy:Oqec_qcec.Qcec.Alternating c out in
      r.Oqec_qcec.Equivalence.outcome = Oqec_qcec.Equivalence.Equivalent)

let prop_clifford_resynthesis_checked =
  qtest ~count:15 "extract: Clifford resynthesis verified by the tableau checker"
    QCheck.(make ~print:string_of_int Gen.int)
    (fun seed ->
      let c = random_circuit ~tgates:false seed 5 50 in
      let out = Oqec_compile.Optimize.optimize (Zx_extract.resynthesize c) in
      let r = Oqec_qcec.Qcec.check ~strategy:Oqec_qcec.Qcec.Clifford c out in
      r.Oqec_qcec.Equivalence.outcome = Oqec_qcec.Equivalence.Equivalent)

let test_clifford_resynthesis_shrinks () =
  (* On Clifford-dominated circuits the round-trip usually reduces gate
     counts; pin one seed where it does. *)
  let c = random_circuit ~tgates:false 21 6 80 in
  let out = Oqec_compile.Optimize.optimize (Zx_extract.resynthesize c) in
  Alcotest.(check bool) "smaller" true (Circuit.gate_count out < Circuit.gate_count c)

let test_extract_rejects_gadgets () =
  (* A hand-built phase gadget has no causal flow to extract through. *)
  let g = Zx_graph.create () in
  let inp = Zx_graph.add_vertex g (Zx_graph.B_in 0) ~phase:Phase.zero in
  let out = Zx_graph.add_vertex g (Zx_graph.B_out 0) ~phase:Phase.zero in
  let w = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
  let axis = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.zero in
  let leaf = Zx_graph.add_vertex g Zx_graph.Z ~phase:Phase.quarter_pi in
  Zx_graph.add_edge g inp w Zx_graph.Simple;
  Zx_graph.add_edge g w out Zx_graph.Simple;
  Zx_graph.add_edge g w axis Zx_graph.Had;
  Zx_graph.add_edge g axis leaf Zx_graph.Had;
  match Zx_extract.extract g with
  | exception Zx_extract.Extraction_failed _ -> ()
  | _ -> Alcotest.fail "expected extraction failure on a gadget"

let suite =
  [
    Alcotest.test_case "extraction basics" `Quick test_extract_basics;
    prop_extract_roundtrip;
    prop_extract_roundtrip_wide;
    prop_clifford_resynthesis_checked;
    Alcotest.test_case "clifford resynthesis shrinks" `Quick test_clifford_resynthesis_shrinks;
    Alcotest.test_case "gadgets rejected" `Quick test_extract_rejects_gadgets;
  ]
