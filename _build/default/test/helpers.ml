(* Shared test utilities. *)

open Oqec_base

let cx_testable =
  Alcotest.testable Cx.pp (fun a b -> Cx.approx_equal ~tol:1e-9 a b)

let phase_testable = Alcotest.testable Phase.pp Phase.equal

let dmatrix_testable =
  Alcotest.testable Dmatrix.pp (fun a b -> Dmatrix.equal ~tol:1e-9 a b)

let dmatrix_up_to_phase =
  Alcotest.testable Dmatrix.pp (fun a b -> Dmatrix.equal_up_to_phase ~tol:1e-9 a b)

let check_matrix msg expected actual = Alcotest.check dmatrix_testable msg expected actual

let check_matrix_up_to_phase msg expected actual =
  Alcotest.check dmatrix_up_to_phase msg expected actual

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A deterministic RNG for generators used inside tests. *)
let test_rng () = Rng.make ~seed:42
