test/test_compile.ml: Alcotest Architecture Circuit Compile Dmatrix Gen Helpers List Optimize Oqec_base Oqec_circuit Oqec_compile Perm Phase QCheck Rng Route Unitary
