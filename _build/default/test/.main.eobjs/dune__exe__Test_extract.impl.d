test/test_extract.ml: Alcotest Circuit Gen Helpers Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_zx Phase QCheck Rng Unitary Zx_extract Zx_graph Zx_tensor
