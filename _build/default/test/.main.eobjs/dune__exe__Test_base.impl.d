test/test_base.ml: Alcotest Cx Dmatrix Float Format Helpers List Oqec_base Perm Phase QCheck Rng
