test/test_qasm.ml: Alcotest Array Circuit Cx Dmatrix Gate Gen Helpers List Oqec_base Oqec_circuit Oqec_qasm Perm Phase QCheck Qasm Rng Unitary
