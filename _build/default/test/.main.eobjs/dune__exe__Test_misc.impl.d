test/test_misc.ml: Alcotest Architecture Circuit Dmatrix Format Gate Gen Helpers List Oqec_base Oqec_circuit Oqec_compile Oqec_qasm Oqec_qcec Oqec_stab Phase QCheck Rng String Unitary
