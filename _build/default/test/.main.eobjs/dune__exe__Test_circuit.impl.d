test/test_circuit.ml: Alcotest Array Circuit Cx Dmatrix Format Gate Helpers List Oqec_base Oqec_circuit Perm Phase QCheck Render Rng String Unitary
