test/test_zx.ml: Alcotest Circuit Format Gate Gen Helpers List Oqec_base Oqec_circuit Oqec_dd Oqec_zx Perm Phase Printf QCheck Rng String Unitary Zx_circuit Zx_export Zx_graph Zx_simplify Zx_tensor
