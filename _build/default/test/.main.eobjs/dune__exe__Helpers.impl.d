test/helpers.ml: Alcotest Cx Dmatrix Oqec_base Phase QCheck QCheck_alcotest Rng
