test/main.mli:
