test/test_differential.ml: Circuit Equivalence Gen Helpers List Oqec_base Oqec_circuit Oqec_qcec Oqec_workloads Phase Printf QCheck Qcec Rng Unitary
