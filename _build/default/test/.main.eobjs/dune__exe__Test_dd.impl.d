test/test_dd.ml: Alcotest Array Circuit Ctable Cx Dd Dd_circuit Dd_export Dmatrix Gate Gen Helpers Oqec_base Oqec_circuit Oqec_dd Phase Printf QCheck Rng Unitary
