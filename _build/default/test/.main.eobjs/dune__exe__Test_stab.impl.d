test/test_stab.ml: Alcotest Circuit Dmatrix Equivalence Format Gate Gen Helpers Oqec_base Oqec_circuit Oqec_compile Oqec_qcec Oqec_stab Oqec_workloads Phase QCheck Qcec Rng Tableau Unitary
