test/test_workloads.ml: Alcotest Array Circuit Cx Dmatrix Float Gate Gen Helpers List Oqec_base Oqec_circuit Oqec_workloads Phase Printf QCheck Unitary
