test/test_decompose.ml: Alcotest Circuit Decompose Dmatrix Gate Gen Helpers List Oqec_base Oqec_circuit Phase Printf QCheck Rng Unitary
